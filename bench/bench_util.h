// Shared helpers for the experiment harnesses (E1–E8) and the self-timed
// micro-benchmarks (M1–M3, bench_core).
//
// Each bench binary regenerates one claim of the paper as an ASCII table
// (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured outcomes). Workload families live in
// graph/workloads.h so tests and examples can reuse them; helpers here fit
// growth exponents, format output, and time kernels without any external
// benchmarking dependency (see docs/PERFORMANCE.md).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/workloads.h"

namespace dcl::bench {

// ---------------------------------------------------------------------------
// Self-timed measurement: min-of-k repetitions, auto-scaled iteration counts.
// ---------------------------------------------------------------------------

/// Prevents the optimizer from discarding a computed value.
inline void keep(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(v) : "memory");
#else
  static volatile std::uint64_t sink = 0;
  sink = v;
#endif
}

/// One benchmark result: the minimum per-op time over `repetitions`
/// repetitions (min-of-k rejects scheduler noise; each repetition runs the
/// kernel `iterations` times back to back).
struct Timing {
  std::string name;
  double ns_per_op = 0.0;
  double items_per_sec = 0.0;  ///< 0 when no item count was supplied
  std::int64_t iterations = 0;
  int repetitions = 0;
  /// Extra recorded quantities (clique counts, ledger round totals, ...);
  /// values are exact doubles so fixed-seed runs can be diffed bit-by-bit.
  std::vector<std::pair<std::string, double>> counters;
};

/// Timing-loop knobs; `from_env` reads DCL_BENCH_REPS / DCL_BENCH_MIN_MS so
/// CI smoke runs can shrink the loop without recompiling.
struct TimingConfig {
  int repetitions = 5;
  double min_rep_seconds = 0.15;

  static TimingConfig from_env() {
    TimingConfig cfg;
    if (const char* r = std::getenv("DCL_BENCH_REPS")) {
      cfg.repetitions = std::max(1, std::atoi(r));
    }
    if (const char* ms = std::getenv("DCL_BENCH_MIN_MS")) {
      cfg.min_rep_seconds = std::max(1e-4, std::atof(ms) / 1e3);
    }
    return cfg;
  }
};

/// DCL_BENCH_FILTER=substr restricts the timing loops to benchmarks whose
/// name contains the substring (A/B reruns of one hot entry without paying
/// for the whole suite). Filtered-out benchmarks are skipped (zero
/// iterations) and dropped from the table and the JSON snapshot.
inline bool bench_name_selected(const std::string& name) {
  const char* filter = std::getenv("DCL_BENCH_FILTER");
  return filter == nullptr || name.find(filter) != std::string::npos;
}

/// Times `fn` (which must return a std::uint64_t result that depends on the
/// work done): calibrates an iteration count so one repetition takes at
/// least `cfg.min_rep_seconds`, then reports the fastest repetition.
/// `items_per_iter` scales the derived items/s throughput figure.
template <typename F>
Timing time_kernel(std::string name, F&& fn, double items_per_iter = 0.0,
                   TimingConfig cfg = TimingConfig::from_env()) {
  using clock = std::chrono::steady_clock;
  if (!bench_name_selected(name)) {
    Timing skipped;
    skipped.name = std::move(name);
    return skipped;  // iterations == 0 marks it as filtered out
  }
  const auto run_iters = [&](std::int64_t iters) {
    const auto start = clock::now();
    for (std::int64_t i = 0; i < iters; ++i) keep(fn());
    return std::chrono::duration<double>(clock::now() - start).count();
  };

  // Calibrate: grow the iteration count until a repetition is long enough
  // for the clock to resolve it cleanly.
  std::int64_t iters = 1;
  double elapsed = run_iters(iters);
  while (elapsed < cfg.min_rep_seconds && iters < (std::int64_t{1} << 40)) {
    const double target = std::max(cfg.min_rep_seconds, 1e-6);
    double growth = (elapsed > 0) ? 1.2 * target / elapsed : 16.0;
    growth = std::min(growth, 16.0);
    iters = std::max<std::int64_t>(
        iters + 1, static_cast<std::int64_t>(static_cast<double>(iters) * growth));
    elapsed = run_iters(iters);
  }

  double best = elapsed;
  for (int rep = 1; rep < cfg.repetitions; ++rep) {
    best = std::min(best, run_iters(iters));
  }

  Timing t;
  t.name = std::move(name);
  t.iterations = iters;
  t.repetitions = cfg.repetitions;
  t.ns_per_op = best * 1e9 / static_cast<double>(iters);
  if (items_per_iter > 0.0) {
    t.items_per_sec = items_per_iter * static_cast<double>(iters) / best;
  }
  return t;
}

/// Collects timings, prints them as an ASCII table, and emits the JSON
/// snapshot consumed by tools/run_bench.sh (BENCH_core.json).
class BenchReport {
 public:
  explicit BenchReport(std::string harness) : harness_(std::move(harness)) {}

  Timing& add(Timing t) {
    timings_.push_back(std::move(t));
    return timings_.back();
  }

  void print() const {
    std::printf("%-44s %14s %14s\n", "benchmark", "ns/op", "items/s");
    for (const Timing& t : timings_) {
      if (t.iterations == 0) continue;  // filtered out via DCL_BENCH_FILTER
      std::printf("%-44s %14.1f %14.3g\n", t.name.c_str(), t.ns_per_op,
                  t.items_per_sec);
      for (const auto& [k, v] : t.counters) {
        std::printf("    %-40s %.17g\n", k.c_str(), v);
      }
    }
  }

  /// Writes the snapshot to `path` ("-" = stdout). Returns false on I/O
  /// failure. Counters use %.17g so ledger totals round-trip bit-exactly.
  bool write_json(const char* path) const {
    std::FILE* f = (std::strcmp(path, "-") == 0) ? stdout
                                                 : std::fopen(path, "w");
    if (f == nullptr) return false;
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < timings_.size(); ++i) {
      if (timings_[i].iterations > 0) selected.push_back(i);
    }
    std::fprintf(f, "{\n  \"harness\": \"%s\",\n  \"benchmarks\": [\n",
                 harness_.c_str());
    for (std::size_t s = 0; s < selected.size(); ++s) {
      const Timing& t = timings_[selected[s]];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ns_per_op\": %.6g, "
                   "\"items_per_sec\": %.6g, \"iterations\": %lld, "
                   "\"repetitions\": %d",
                   t.name.c_str(), t.ns_per_op, t.items_per_sec,
                   static_cast<long long>(t.iterations), t.repetitions);
      if (!t.counters.empty()) {
        std::fprintf(f, ", \"counters\": {");
        for (std::size_t j = 0; j < t.counters.size(); ++j) {
          std::fprintf(f, "%s\"%s\": %.17g", j ? ", " : "",
                       t.counters[j].first.c_str(), t.counters[j].second);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}%s\n", (s + 1 < selected.size()) ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (f != stdout) std::fclose(f);
    return true;
  }

 private:
  std::string harness_;
  std::vector<Timing> timings_;
};

/// Prints the report and writes the JSON snapshot when `--out` was given.
/// Shared tail of every self-timed harness's run().
inline int finish_report(const BenchReport& report, const char* out_path) {
  report.print();
  if (out_path != nullptr && !report.write_json(out_path)) {
    std::fprintf(stderr, "bench: cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}

/// The standard bench CLI: `prog [--out FILE]`. Parses argv and forwards
/// to `run`; returns 2 on usage errors. Shared main() of every harness.
template <typename RunFn>
int bench_main(int argc, char** argv, RunFn&& run) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  return run(out_path);
}

using dcl::clustered_workload;
using dcl::periphery_workload;
using dcl::power_workload;
using dcl::ring_of_cliques_workload;

/// Averages a measured quantity over `seeds` runs.
template <typename F>
double average_over_seeds(int seeds, F&& run_one) {
  double total = 0.0;
  for (int s = 1; s <= seeds; ++s) {
    total += run_one(static_cast<std::uint64_t>(s));
  }
  return total / seeds;
}

/// Prints the fitted exponent line used by every scaling experiment.
inline void print_exponent(const char* label, const std::vector<double>& ns,
                           const std::vector<double>& rounds,
                           double predicted) {
  const LinearFit fit = fit_power_law(ns, rounds);
  std::printf(
      "%s: fitted exponent %.3f (R^2 %.3f), paper predicts %.3f "
      "[Õ(·) hides polylog factors]\n",
      label, fit.slope, fit.r_squared, predicted);
}

inline std::string format_double(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace dcl::bench

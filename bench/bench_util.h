// Shared helpers for the experiment harnesses (E1–E8).
//
// Each bench binary regenerates one claim of the paper as an ASCII table
// (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured outcomes). Workload families live in
// graph/workloads.h so tests and examples can reuse them; helpers here fit
// growth exponents and format output.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/workloads.h"

namespace dcl::bench {

using dcl::clustered_workload;
using dcl::periphery_workload;
using dcl::power_workload;
using dcl::ring_of_cliques_workload;

/// Averages a measured quantity over `seeds` runs.
template <typename F>
double average_over_seeds(int seeds, F&& run_one) {
  double total = 0.0;
  for (int s = 1; s <= seeds; ++s) {
    total += run_one(static_cast<std::uint64_t>(s));
  }
  return total / seeds;
}

/// Prints the fitted exponent line used by every scaling experiment.
inline void print_exponent(const char* label, const std::vector<double>& ns,
                           const std::vector<double>& rounds,
                           double predicted) {
  const LinearFit fit = fit_power_law(ns, rounds);
  std::printf(
      "%s: fitted exponent %.3f (R^2 %.3f), paper predicts %.3f "
      "[Õ(·) hides polylog factors]\n",
      label, fit.slope, fit.r_squared, predicted);
}

inline std::string format_double(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace dcl::bench

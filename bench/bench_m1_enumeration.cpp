// M1 — substrate micro-benchmarks: sequential clique enumeration.
//
// The ground-truth oracle and the per-node local listing inside the
// distributed algorithms both run on these kernels; their throughput sets
// the wall-clock budget of every experiment.
#include <benchmark/benchmark.h>

#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "graph/orientation.h"

namespace dcl {
namespace {

const Graph& workload(int which) {
  static const Graph sparse = [] {
    Rng rng(1);
    return erdos_renyi_gnm(512, 6000, rng);
  }();
  static const Graph dense = [] {
    Rng rng(2);
    return erdos_renyi_gnm(200, 8000, rng);
  }();
  return which == 0 ? sparse : dense;
}

void BM_ListKCliques(benchmark::State& state) {
  const Graph& g = workload(static_cast<int>(state.range(1)));
  const int p = static_cast<int>(state.range(0));
  std::uint64_t found = 0;
  for (auto _ : state) {
    found = count_k_cliques(g, p);
    benchmark::DoNotOptimize(found);
  }
  state.counters["cliques"] = static_cast<double>(found);
}
BENCHMARK(BM_ListKCliques)
    ->ArgsProduct({{3, 4, 5}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_NaiveCount(benchmark::State& state) {
  const Graph& g = workload(0);
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_k_cliques_naive(g, p));
  }
}
BENCHMARK(BM_NaiveCount)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MaximalCliques(benchmark::State& state) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(150, 2000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximal_cliques(g));
  }
}
BENCHMARK(BM_MaximalCliques)->Unit(benchmark::kMillisecond);

void BM_DegeneracyOrder(benchmark::State& state) {
  Rng rng(4);
  const Graph g =
      erdos_renyi_gnm(static_cast<NodeId>(state.range(0)),
                      static_cast<EdgeId>(12 * state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(degeneracy_order(g));
  }
}
BENCHMARK(BM_DegeneracyOrder)->Arg(512)->Arg(2048)->Arg(8192);

}  // namespace
}  // namespace dcl

BENCHMARK_MAIN();

// M1 — substrate micro-benchmarks: sequential clique enumeration.
//
// The ground-truth oracle and the per-node local listing inside the
// distributed algorithms both run on these kernels; their throughput sets
// the wall-clock budget of every experiment. Self-timed (min-of-k); no
// external benchmarking library needed. Usage: bench_m1 [--out FILE].
#include <cstring>

#include "bench_util.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "graph/orientation.h"

namespace dcl::bench {
namespace {

int run(const char* out_path) {
  BenchReport report("bench_m1_enumeration");

  Rng sparse_rng(1);
  const Graph sparse = erdos_renyi_gnm(512, 6000, sparse_rng);
  Rng dense_rng(2);
  const Graph dense = erdos_renyi_gnm(200, 8000, dense_rng);

  for (const auto& [label, g] :
       {std::pair<const char*, const Graph*>{"sparse_n512_m6000", &sparse},
        std::pair<const char*, const Graph*>{"dense_n200_m8000", &dense}}) {
    for (const int p : {3, 4, 5}) {
      const std::uint64_t found = count_k_cliques(*g, p);
      auto& t = report.add(time_kernel(
          std::string("count_k_cliques/p=") + std::to_string(p) + "/" + label,
          [&g = *g, p] { return count_k_cliques(g, p); },
          static_cast<double>(found)));
      t.counters.emplace_back("cliques", static_cast<double>(found));
    }
  }

  for (const int p : {3, 4}) {
    report.add(time_kernel(
        std::string("count_k_cliques_naive/p=") + std::to_string(p) +
            "/sparse_n512_m6000",
        [&, p] { return count_k_cliques_naive(sparse, p); }));
  }

  {
    Rng rng(3);
    const Graph g = erdos_renyi_gnm(150, 2000, rng);
    report.add(time_kernel("maximal_cliques/er_n150_m2000", [&] {
      return static_cast<std::uint64_t>(maximal_cliques(g).size());
    }));
  }

  for (const int n : {512, 2048, 8192}) {
    Rng rng(4);
    const Graph g = erdos_renyi_gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(12LL * n), rng);
    report.add(time_kernel(
        std::string("degeneracy_order/n=") + std::to_string(n),
        [&] { return static_cast<std::uint64_t>(degeneracy_order(g).degeneracy); },
        static_cast<double>(g.edge_count())));
  }

  return finish_report(report, out_path);
}

}  // namespace
}  // namespace dcl::bench

int main(int argc, char** argv) {
  return dcl::bench::bench_main(argc, argv, dcl::bench::run);
}

// E4 — Theorem 2.3 / Definition 2.2: the δ-expander decomposition.
//
// For each (family, n, δ) we report the charged construction rounds
// against the theorem's Õ(n^{1-δ}), and the three output guarantees:
// |Er| ≤ |E|/6, arboricity(Es) ≤ n^δ (via the explicit orientation
// witness), and cluster quality (min internal degree ≥ the peel threshold,
// spectral mixing-time estimate within the polylog bound).
#include <cstdio>

#include "bench_util.h"
#include "expander/decomposition.h"

namespace dcl {
namespace {

std::int64_t es_witness_outdegree(const Graph& g,
                                  const ExpanderDecomposition& d) {
  std::vector<std::int64_t> outdeg(static_cast<std::size_t>(g.node_count()),
                                   0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (d.part[static_cast<std::size_t>(e)] != EdgePart::sparse) continue;
    const Edge& ed = g.edge(e);
    ++outdeg[static_cast<std::size_t>(
        d.es_away_from_lower[static_cast<std::size_t>(e)] ? ed.u : ed.v)];
  }
  std::int64_t best = 0;
  for (const auto v : outdeg) best = std::max(best, v);
  return best;
}

}  // namespace
}  // namespace dcl

int main() {
  using namespace dcl;
  std::printf(
      "E4: Theorem 2.3 — δ-expander decomposition: charged rounds vs "
      "Õ(n^{1-δ}) and the Definition 2.2 guarantees.\n");
  Table table({"family", "n", "m", "delta", "rounds", "n^{1-δ}log n",
               "|Er|/|E|", "Es outdeg", "n^δ", "clusters", "min cl deg",
               "max mixing", "polylog bound"});
  for (const NodeId n : {256, 512, 1024}) {
    for (const double delta : {0.45, 0.55, 0.65}) {
      for (const int family : {0, 1}) {
        Rng rng(static_cast<std::uint64_t>(n) * 31 + family);
        const Graph g =
            (family == 0)
                ? erdos_renyi_gnm(n, static_cast<EdgeId>(12LL * n), rng)
                : stochastic_block_model(
                      {static_cast<NodeId>(n / 2), static_cast<NodeId>(n / 2)},
                      std::min(1.0, 24.0 / n), 0.01, rng);
        DecompositionConfig cfg;
        cfg.delta = delta;
        const auto d = expander_decompose(g, n, cfg, rng);
        NodeId min_deg = n;
        double max_mixing = 0.0;
        for (const auto& c : d.clusters) {
          min_deg = std::min(min_deg, c.min_internal_degree);
          max_mixing = std::max(max_mixing, c.mixing_time);
        }
        const double predicted =
            std::pow(static_cast<double>(n), 1.0 - delta) *
            std::log2(static_cast<double>(n));
        table.row()
            .add(family == 0 ? "erdos-renyi" : "sbm-2-blocks")
            .add(static_cast<std::int64_t>(n))
            .add(g.edge_count())
            .add(delta, 2)
            .add(d.charged_rounds, 1)
            .add(predicted, 1)
            .add(static_cast<double>(d.er_count) /
                     static_cast<double>(std::max<EdgeId>(1, g.edge_count())),
                 4)
            .add(es_witness_outdegree(g, d))
            .add(ceil_pow(n, delta))
            .add(static_cast<std::int64_t>(d.clusters.size()))
            .add(d.clusters.empty() ? 0 : static_cast<std::int64_t>(min_deg))
            .add(max_mixing, 1)
            .add(polylog_mixing_bound(g.edge_count()), 1);
      }
    }
  }
  table.print();
  std::printf(
      "Guarantees: |Er|/|E| ≤ 1/6 ≈ 0.1667; Es outdeg ≤ n^δ; mixing ≤ "
      "polylog bound.\n");
  return 0;
}

// E6 — §5 discussion: proximity to the Ω̃(n^{(p-2)/p}) lower bound of
// Fischer et al.
//
// For each p we report measured rounds divided by n^{(p-2)/p}. The paper's
// upper bound leaves a gap of n^{p/(p+2) - (p-2)/p} = n^{4/(p(p+2))}
// (plus the n^{3/4} term for p ≤ 5); the measured ratio should grow no
// faster than that gap exponent predicts.
#include <cstdio>

#include "bench_util.h"
#include "core/kp_lister.h"

int main() {
  using namespace dcl;
  std::printf(
      "E6: gap to the Ω̃(n^{(p-2)/p}) lower bound (Fischer et al., cited in "
      "§1/§5).\n");
  const std::vector<NodeId> sizes = {128, 181, 256, 362, 512};
  Table table({"p", "n", "rounds", "n^{(p-2)/p}", "ratio",
               "paper gap exponent"});
  for (const int p : {4, 5, 6, 7}) {
    std::vector<double> ns, ratios;
    const double lb_exp = static_cast<double>(p - 2) / p;
    const double ub_exp = std::max(0.75, static_cast<double>(p) / (p + 2));
    for (const NodeId n : sizes) {
      Rng rng(static_cast<std::uint64_t>(n) * 17 + static_cast<std::uint64_t>(p));
      const Graph g = erdos_renyi_gnp(n, 0.12, rng);  // dense regime
      KpConfig cfg;
      cfg.p = p;
      cfg.stop_scale = 0.15;
      const auto result = list_kp(g, cfg);
      const double lower = std::pow(static_cast<double>(n), lb_exp);
      const double ratio = result.total_rounds() / lower;
      table.row()
          .add(p)
          .add(static_cast<std::int64_t>(n))
          .add(result.total_rounds(), 1)
          .add(lower, 1)
          .add(ratio, 2)
          .add(ub_exp - lb_exp, 3);
      ns.push_back(static_cast<double>(n));
      ratios.push_back(ratio);
    }
    const auto fit = fit_power_law(ns, ratios);
    std::printf("  K%d: measured gap exponent %.3f, paper's worst-case gap "
                "%.3f\n",
                p, fit.slope, ub_exp - lb_exp);
  }
  table.print();
  return 0;
}

// M2 — substrate micro-benchmarks: graph generators and CSR construction.
// Self-timed (min-of-k); usage: bench_m2 [--out FILE].
#include <cstring>

#include "bench_util.h"
#include "graph/generators.h"

namespace dcl::bench {
namespace {

int run(const char* out_path) {
  BenchReport report("bench_m2_generators");

  for (const int n : {1024, 4096, 16384}) {
    const auto m = static_cast<EdgeId>(8LL * n);
    report.add(time_kernel(
        std::string("erdos_renyi_gnm/n=") + std::to_string(n),
        [n, m] {
          Rng rng(1);
          return static_cast<std::uint64_t>(
              erdos_renyi_gnm(static_cast<NodeId>(n), m, rng).edge_count());
        },
        static_cast<double>(m)));
  }

  for (const int n : {1024, 4096, 16384}) {
    report.add(time_kernel(
        std::string("erdos_renyi_gnp/n=") + std::to_string(n), [n] {
          Rng rng(2);
          return static_cast<std::uint64_t>(
              erdos_renyi_gnp(static_cast<NodeId>(n), 16.0 / n, rng)
                  .edge_count());
        }));
  }

  for (const int n : {256, 1024}) {
    const auto half = static_cast<NodeId>(n / 2);
    report.add(time_kernel(
        std::string("stochastic_block_model/n=") + std::to_string(n), [half] {
          Rng rng(3);
          return static_cast<std::uint64_t>(
              stochastic_block_model({half, half}, 0.1, 0.01, rng)
                  .edge_count());
        }));
  }

  for (const int n : {256, 1024}) {
    report.add(time_kernel(
        std::string("power_law_chung_lu/n=") + std::to_string(n), [n] {
          Rng rng(4);
          return static_cast<std::uint64_t>(
              power_law_chung_lu(static_cast<NodeId>(n), 2.5, 12.0, rng)
                  .edge_count());
        }));
  }

  for (const int n : {256, 1024}) {
    report.add(time_kernel(
        std::string("random_regular/n=") + std::to_string(n), [n] {
          Rng rng(5);
          return static_cast<std::uint64_t>(
              random_regular(static_cast<NodeId>(n), 8, rng).edge_count());
        }));
  }

  {
    Rng rng(6);
    const Graph g = erdos_renyi_gnm(4096, 65536, rng);
    const std::vector<Edge> edges(g.edges().begin(), g.edges().end());
    report.add(time_kernel(
        "csr_construction/n4096_m65536",
        [&] {
          auto copy = edges;
          return static_cast<std::uint64_t>(
              Graph::from_edges(4096, std::move(copy)).edge_count());
        },
        65536.0));
  }

  return finish_report(report, out_path);
}

}  // namespace
}  // namespace dcl::bench

int main(int argc, char** argv) {
  return dcl::bench::bench_main(argc, argv, dcl::bench::run);
}

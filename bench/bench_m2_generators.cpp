// M2 — substrate micro-benchmarks: graph generators and CSR construction.
#include <benchmark/benchmark.h>

#include "graph/generators.h"

namespace dcl {
namespace {

void BM_ErdosRenyiGnm(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto m = static_cast<EdgeId>(8 * state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(erdos_renyi_gnm(n, m, rng));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ErdosRenyiGnm)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ErdosRenyiGnp(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(erdos_renyi_gnp(n, 16.0 / n, rng));
  }
}
BENCHMARK(BM_ErdosRenyiGnp)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_StochasticBlockModel(benchmark::State& state) {
  const auto half = static_cast<NodeId>(state.range(0) / 2);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stochastic_block_model({half, half}, 0.1, 0.01, rng));
  }
}
BENCHMARK(BM_StochasticBlockModel)->Arg(256)->Arg(1024);

void BM_PowerLawChungLu(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(power_law_chung_lu(n, 2.5, 12.0, rng));
  }
}
BENCHMARK(BM_PowerLawChungLu)->Arg(256)->Arg(1024);

void BM_RandomRegular(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_regular(n, 8, rng));
  }
}
BENCHMARK(BM_RandomRegular)->Arg(256)->Arg(1024);

void BM_CsrConstruction(benchmark::State& state) {
  Rng rng(6);
  const Graph g = erdos_renyi_gnm(4096, 65536, rng);
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  for (auto _ : state) {
    auto copy = edges;
    benchmark::DoNotOptimize(Graph::from_edges(4096, std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_CsrConstruction);

}  // namespace
}  // namespace dcl

BENCHMARK_MAIN();

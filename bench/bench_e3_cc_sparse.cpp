// E3 — Theorem 1.3: sparsity-aware CONGESTED CLIQUE listing in
// Θ̃(1 + m/n^{1+2/p}) rounds.
//
// For fixed n we sweep m across the crossover point m* = n^{1+2/p}:
// below it the algorithm runs in Õ(1) rounds (flat region), above it the
// rounds grow linearly in m. The Dolev-style oblivious baseline is flat at
// Θ(n^{1-2/p}·p²) regardless of m — the sparsity-aware algorithm must beat
// it in the sparse regime. (Section 4 of the paper; the lower-bound side of
// Θ̃ comes from Fischer et al. / Izumi–Le Gall as cited there.)
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "core/sparse_cc.h"

int main() {
  using namespace dcl;
  std::printf(
      "E3: Theorem 1.3 — sparsity-aware Kp listing in the CONGESTED "
      "CLIQUE, Θ̃(1 + m/n^{1+2/p}).\n");
  for (const NodeId n : {243, 512}) {
    for (const int p : {3, 4, 5}) {
      const double crossover =
          std::pow(static_cast<double>(n), 1.0 + 2.0 / p);
      std::printf("\n-- n = %d, p = %d, crossover m* = n^{1+2/p} ≈ %.0f --\n",
                  n, p, crossover);
      Table table({"m", "m/m*", "sparse-aware rounds", "oblivious rounds",
                   "max recv load", "cliques (sparse pts)"});
      const auto max_m = static_cast<EdgeId>(n) * (n - 1) / 3;
      for (const double factor : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        const auto m = std::min<EdgeId>(
            max_m, static_cast<EdgeId>(factor * crossover));
        Rng rng(static_cast<std::uint64_t>(m) + static_cast<std::uint64_t>(p));
        const Graph g = erdos_renyi_gnm(n, m, rng);
        SparseCcConfig cfg;
        cfg.p = p;
        cfg.seed = 3;
        // Rounds come from the exact communication loads; skip the local
        // enumeration so the dense end of the sweep stays tractable.
        cfg.perform_listing = (static_cast<double>(m) <= crossover);
        ListingOutput out(n);
        const auto result = sparse_cc_list(g, cfg, out);
        const double oblivious_rounds = oblivious_cc_rounds(n, p);
        table.row()
            .add(m)
            .add(static_cast<double>(m) / crossover, 3)
            .add(result.total_rounds(), 1)
            .add(oblivious_rounds, 1)
            .add(result.max_recv_load)
            .add(result.unique_cliques);
        if (m >= max_m) break;  // density cap reached
      }
      table.print();
    }
  }
  std::printf(
      "\nExpected shape: sparse-aware flat (Õ(1)) for m ≲ m*, then linear "
      "in m; oblivious flat at its worst-case schedule for all m.\n");
  return 0;
}

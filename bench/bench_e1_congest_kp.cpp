// E1 — Theorem 1.1: CONGEST Kp-listing rounds vs n, per p ∈ {4,5,6,7}.
//
// The paper proves the worst-case bound Õ(n^{3/4} + n^{p/(p+2)}), which is
// about *dense* inputs (for sparse inputs the sparsity-aware machinery is
// strictly faster — that is the point of the design). We therefore sweep
// constant-edge-density Erdős–Rényi graphs (m = Θ(n²)) and fit the
// log-log growth exponent of the measured rounds per clique size.
//
// Reproduction criteria (recorded in EXPERIMENTS.md):
//  * every fitted exponent stays at or below the paper's worst-case
//    exponent max(3/4, p/(p+2)) — the Õ(·) envelope;
//  * exponents are ordered in p (larger cliques are harder), matching the
//    p/(p+2) ordering;
//  * the measurement tracks the balanced-instance model exponent 1 - 2/p
//    (an n-node expander cluster listing its own m = Θ(n²) edges — the
//    regime these instances actually exercise).
#include <cstdio>

#include "bench_util.h"
#include "core/kp_lister.h"

int main() {
  using namespace dcl;
  std::printf(
      "E1: Theorem 1.1 — Kp listing in CONGEST, Õ(n^{3/4} + n^{p/(p+2)}).\n"
      "Dense workload G(n, 0.12·C(n,2)); fitted exponents must stay under "
      "the paper's worst-case exponent.\n\n");
  const std::vector<NodeId> sizes = {128, 181, 256, 362, 512};
  const double edge_density = 0.12;
  Table table({"p", "n", "m", "rounds", "exchange", "routing", "analytic",
               "cliques"});
  std::printf("fitted exponents:\n");
  for (const int p : {4, 5, 6, 7}) {
    std::vector<double> ns, rounds;
    for (const NodeId n : sizes) {
      const double avg = bench::average_over_seeds(2, [&](std::uint64_t seed) {
        Rng rng(seed * 7919 + static_cast<std::uint64_t>(n) +
                static_cast<std::uint64_t>(p));
        const Graph g = erdos_renyi_gnp(n, edge_density, rng);
        KpConfig cfg;
        cfg.p = p;
        cfg.seed = seed;
        cfg.stop_scale = 0.15;
        const auto result = list_kp(g, cfg);
        if (seed == 1) {
          table.row()
              .add(p)
              .add(static_cast<std::int64_t>(n))
              .add(g.edge_count())
              .add(result.total_rounds(), 1)
              .add(result.ledger.rounds_of_kind(CostKind::exchange), 1)
              .add(result.ledger.rounds_of_kind(CostKind::routing), 1)
              .add(result.ledger.rounds_of_kind(CostKind::analytic), 1)
              .add(result.unique_cliques);
        }
        return result.total_rounds();
      });
      ns.push_back(static_cast<double>(n));
      rounds.push_back(avg);
    }
    const double paper = std::max(0.75, static_cast<double>(p) / (p + 2));
    const double balanced = 1.0 - 2.0 / p;
    const auto fit = fit_power_law(ns, rounds);
    std::printf(
        "  K%d: measured %.3f (R^2 %.3f) | paper worst-case %.3f | "
        "balanced-instance model %.3f\n",
        p, fit.slope, fit.r_squared, paper, balanced);
  }
  std::printf("\n");
  table.print();
  return 0;
}
